/**
 * @file
 * Saturated closed-loop and constant-rate (security-mode) LLC-miss
 * issue, substituting the paper's Sniper-driven host.
 */

#include "sim/frontend.hh"

#include <algorithm>

#include "common/log.hh"

namespace palermo {

Frontend::Frontend(std::unique_ptr<TraceGen> trace,
                   std::uint64_t total_requests, bool constant_rate,
                   unsigned interval, double demand_probability,
                   std::uint64_t seed)
    : trace_(std::move(trace)), totalRequests_(total_requests),
      constantRate_(constant_rate), interval_(interval),
      demandProbability_(demand_probability),
      rng_(mix64(seed ^ 0x46524f4eull))
{
    palermo_assert(trace_ != nullptr);
    palermo_assert(!constant_rate || interval > 0);
}

bool
Frontend::wantsIssue(Tick now) const
{
    if (exhausted())
        return false;
    if (!constantRate_)
        return true;
    return now >= nextSlot_;
}

Tick
Frontend::nextIssueAt(Tick now) const
{
    if (exhausted())
        return kNever;
    if (!constantRate_)
        return now;
    return std::max(now, nextSlot_);
}

FrontendRequest
Frontend::produce(Tick now)
{
    palermo_assert(!exhausted());
    if (constantRate_) {
        nextSlot_ = now + interval_;
        if (!rng_.chance(demandProbability_)) {
            // LLC issued nothing this slot: pad with a dummy request to
            // a uniformly random address (paper §VI).
            ++dummies_;
            return {rng_.range(trace_->numLines()), false, 0, true};
        }
    }
    const TraceRecord record = trace_->next();
    ++issued_;
    return {record.line, record.write, rng_.next(), false};
}

} // namespace palermo
