/**
 * @file
 * Epoch-barrier worker pool: persistent threads, sense-free epoch
 * counter, staged spin/yield/futex waits, allocation-free dispatch.
 */

#include "sim/parallel.hh"

#include "common/log.hh"

namespace palermo {

namespace {

/** Spin iterations before yielding; yields before blocking. */
constexpr unsigned kSpinIters = 2048;
constexpr unsigned kYieldIters = 64;

} // namespace

WorkerPool::WorkerPool(unsigned threads)
{
    const unsigned workers = threads > 1 ? threads - 1 : 0;
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    stop_.store(true, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
WorkerPool::run(Task task, void *ctx, unsigned shards)
{
    palermo_assert(task != nullptr);
    if (shards == 0)
        return;
    if (workers_.empty() || shards == 1) {
        for (unsigned shard = 0; shard < shards; ++shard)
            task(ctx, shard);
        return;
    }

    task_ = task;
    ctx_ = ctx;
    shards_ = shards;
    next_.store(0, std::memory_order_relaxed);
    arrivals_.store(static_cast<unsigned>(workers_.size()),
                    std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();

    // The coordinator works too: claim shards until none remain.
    for (;;) {
        const unsigned shard =
            next_.fetch_add(1, std::memory_order_relaxed);
        if (shard >= shards)
            break;
        task(ctx, shard);
    }

    // Epoch barrier: wait for every worker to retire. Stage the wait so
    // short epochs stay on-core and long ones release the CPU.
    unsigned spins = 0;
    while (true) {
        const unsigned left = arrivals_.load(std::memory_order_acquire);
        if (left == 0)
            break;
        if (spins < kSpinIters) {
            ++spins;
        } else if (spins < kSpinIters + kYieldIters) {
            ++spins;
            std::this_thread::yield();
        } else {
            arrivals_.wait(left, std::memory_order_acquire);
        }
    }
}

void
WorkerPool::waitEpoch(std::uint64_t last_seen)
{
    unsigned spins = 0;
    while (epoch_.load(std::memory_order_acquire) == last_seen) {
        if (spins < kSpinIters) {
            ++spins;
        } else if (spins < kSpinIters + kYieldIters) {
            ++spins;
            std::this_thread::yield();
        } else {
            epoch_.wait(last_seen, std::memory_order_acquire);
        }
    }
}

void
WorkerPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        waitEpoch(seen);
        seen = epoch_.load(std::memory_order_acquire);
        if (stop_.load(std::memory_order_relaxed))
            return;
        for (;;) {
            const unsigned shard =
                next_.fetch_add(1, std::memory_order_relaxed);
            if (shard >= shards_)
                break;
            task_(ctx_, shard);
        }
        if (arrivals_.fetch_sub(1, std::memory_order_acq_rel) == 1)
            arrivals_.notify_one();
    }
}

} // namespace palermo
