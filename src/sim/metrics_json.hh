/**
 * @file
 * Stable-schema JSON rendering of experiment results.
 *
 * Every figure, ablation, and CI gate consumes the same document shape
 * ("palermo-metrics-v1"): a provenance header (tool, git describe,
 * schema version), one entry per design point with its full
 * SystemConfig and RunMetrics, and a sorted map of derived scalars
 * (gmeans, ratios) the producing tool computed across points. Output
 * is byte-deterministic: fixed key order, shortest-round-trip number
 * formatting via std::to_chars, no timestamps or host data — the same
 * grid renders to the same bytes whether it ran on 1 thread or 16.
 */

#ifndef PALERMO_SIM_METRICS_JSON_HH
#define PALERMO_SIM_METRICS_JSON_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/sweep.hh"

namespace palermo {

/**
 * Minimal streaming JSON writer with deterministic formatting.
 * Two-space pretty printing; keys are emitted in call order, so a
 * fixed call sequence yields a stable schema.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be followed by a value or container. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(bool v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter &value(unsigned v)
    {
        return value(static_cast<std::uint64_t>(v));
    }
    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);

    /** Shorthand for key(name) followed by value(v). */
    template <typename T>
    JsonWriter &
    field(const std::string &name, T v)
    {
        key(name);
        return value(v);
    }

    /** Finished document text (call after the final end*()). */
    const std::string &str() const { return out_; }

  private:
    void prepareValue();
    void newline();

    std::string out_;
    std::vector<bool> inArray_;
    std::vector<std::size_t> counts_;
    bool pendingKey_ = false;
};

/** Backslash-escape a string for embedding in JSON. */
std::string jsonEscape(const std::string &text);

/**
 * Deterministic number rendering: shortest round-trip form for finite
 * values, "null" for NaN/infinity (JSON has no encoding for them).
 */
std::string jsonNumber(double value);

/**
 * Build provenance: the PALERMO_GIT_DESCRIBE environment variable when
 * set (for regenerating committed artifacts with the provenance of the
 * commit they describe), else the configure-time git describe, else
 * "unknown". Comparison tools (perf_compare, the determinism golden)
 * ignore the provenance line when diffing.
 */
const char *gitDescribe();

/** Renders RunRecords as "palermo-metrics-v1" documents. */
class MetricsJson
{
  public:
    static constexpr const char *kSchema = "palermo-metrics-v1";

    /**
     * Render a full document.
     * @param tool Producing binary ("palermo_run", "bench_fig10", ...).
     * @param records Design points with their measured metrics.
     * @param derived Cross-point scalars (sorted map: stable order).
     */
    static std::string document(
        const std::string &tool, const std::vector<RunRecord> &records,
        const std::map<std::string, double> &derived = {});

    /**
     * Append the schema/generator provenance header fields. Documents
     * with a different shape (e.g. bench_fig15's areapower-v1) pass
     * their own schema name so the provenance layout stays shared.
     */
    static void writeHeader(JsonWriter &w, const std::string &tool,
                            const std::string &schema = kSchema);

    /**
     * Append one design-point entry (object) to an open array. When
     * @p extra is set it runs before the closing brace, so producers
     * with additional per-point blocks (the serving layer's "service"
     * object) extend the schema without forking the record shape.
     */
    static void writeRecord(
        JsonWriter &w, const RunRecord &record,
        const std::function<void(JsonWriter &)> &extra = nullptr);

    /**
     * Append the "derived" cross-point scalar map (sorted, so the
     * rendering is order-stable regardless of insertion order).
     */
    static void writeDerived(JsonWriter &w,
                             const std::map<std::string, double> &derived);

    /** Append a SystemConfig object under the current key. */
    static void writeConfig(JsonWriter &w, const SystemConfig &config);

    /** Append a RunMetrics object under the current key. */
    static void writeMetrics(JsonWriter &w, const RunMetrics &metrics);

    /**
     * Write a document to a file ("-" for stdout). Returns false on
     * I/O failure.
     */
    static bool writeFile(const std::string &path,
                          const std::string &document);
};

} // namespace palermo

#endif // PALERMO_SIM_METRICS_JSON_HH
