/**
 * @file
 * SweepSpec parsing/expansion and the thread-pool SweepRunner.
 */

#include "sim/sweep.hh"

#include <atomic>
#include <cmath>
#include <sstream>
#include <thread>

#include "common/log.hh"
#include "sim/experiment.hh"
#include "sim/protocol_registry.hh"

namespace palermo {

namespace {

/** Split on a delimiter, dropping empty pieces. */
std::vector<std::string>
splitNonEmpty(const std::string &text, const char *delims)
{
    std::vector<std::string> pieces;
    std::string current;
    for (char c : text) {
        if (std::string(delims).find(c) != std::string::npos) {
            if (!current.empty())
                pieces.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty())
        pieces.push_back(current);
    return pieces;
}

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

} // namespace

bool
parseUnsigned(const std::string &text, std::uint64_t *value)
{
    if (text.empty())
        return false;
    std::uint64_t result = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (result > (UINT64_MAX - digit) / 10)
            return false; // Overflow: reject, don't wrap.
        result = result * 10 + digit;
    }
    *value = result;
    return true;
}

bool
SweepSpec::parse(const std::string &text, SweepSpec *spec,
                 std::string *error)
{
    SweepSpec result;
    for (const std::string &clause : splitNonEmpty(text, "; \t\n")) {
        const std::size_t eq = clause.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 >= clause.size())
            return fail(error, "malformed sweep clause '" + clause
                                   + "' (want axis=v1,v2,...)");
        const std::string axis = clause.substr(0, eq);
        const std::vector<std::string> values =
            splitNonEmpty(clause.substr(eq + 1), ",");
        if (values.empty())
            return fail(error, "sweep axis '" + axis + "' has no values");

        if (axis == "protocol" || axis == "proto") {
            for (const std::string &v : values) {
                ProtocolKind kind;
                if (!protocolFromName(v, &kind))
                    return fail(error, "unknown protocol '" + v + "'");
                result.protocols.push_back(kind);
            }
        } else if (axis == "workload" || axis == "wl") {
            for (const std::string &v : values) {
                Workload workload;
                if (!tryWorkloadFromName(v, &workload))
                    return fail(error, "unknown workload '" + v + "'");
                result.workloads.push_back(workload);
            }
        } else if (axis == "zsa") {
            for (const std::string &v : values) {
                const std::vector<std::string> parts =
                    splitNonEmpty(v, ":");
                std::uint64_t z = 0;
                std::uint64_t s = 0;
                std::uint64_t a = 0;
                if (parts.size() != 3 || !parseUnsigned(parts[0], &z)
                    || !parseUnsigned(parts[1], &s)
                    || !parseUnsigned(parts[2], &a) || z == 0 || s == 0
                    || a == 0)
                    return fail(error, "malformed zsa point '" + v
                                           + "' (want Z:S:A)");
                result.zsaPoints.push_back(
                    {static_cast<unsigned>(z), static_cast<unsigned>(s),
                     static_cast<unsigned>(a)});
            }
        } else if (axis == "pe" || axis == "columns") {
            for (const std::string &v : values) {
                std::uint64_t n = 0;
                if (!parseUnsigned(v, &n) || n == 0)
                    return fail(error, "bad pe count '" + v + "'");
                result.peColumns.push_back(static_cast<unsigned>(n));
            }
        } else if (axis == "channels" || axis == "ch") {
            for (const std::string &v : values) {
                std::uint64_t n = 0;
                if (!parseUnsigned(v, &n) || n == 0)
                    return fail(error, "bad channel count '" + v + "'");
                result.channels.push_back(static_cast<unsigned>(n));
            }
        } else if (axis == "prefetch" || axis == "pf") {
            for (const std::string &v : values) {
                std::uint64_t n = 0;
                if (!parseUnsigned(v, &n))
                    return fail(error, "bad prefetch length '" + v + "'");
                result.prefetchLens.push_back(static_cast<unsigned>(n));
            }
        } else if (axis == "seed") {
            for (const std::string &v : values) {
                std::uint64_t n = 0;
                if (!parseUnsigned(v, &n))
                    return fail(error, "bad seed '" + v + "'");
                result.seeds.push_back(n);
            }
        } else {
            return fail(error, "unknown sweep axis '" + axis + "'");
        }
    }
    *spec = result;
    return true;
}

bool
SweepSpec::empty() const
{
    return protocols.empty() && workloads.empty() && zsaPoints.empty()
        && peColumns.empty() && channels.empty() && prefetchLens.empty()
        && seeds.empty();
}

std::size_t
SweepSpec::pointCount() const
{
    const auto dim = [](std::size_t n) { return n ? n : 1; };
    return dim(protocols.size()) * dim(workloads.size())
        * dim(zsaPoints.size()) * dim(peColumns.size())
        * dim(channels.size()) * dim(prefetchLens.size())
        * dim(seeds.size());
}

std::vector<DesignPoint>
SweepSpec::expand(ProtocolKind base_kind, Workload base_workload,
                  const SystemConfig &base) const
{
    std::vector<DesignPoint> points;
    points.reserve(pointCount());

    const std::vector<ProtocolKind> kinds =
        protocols.empty() ? std::vector<ProtocolKind>{base_kind}
                          : protocols;
    const std::vector<Workload> loads =
        workloads.empty() ? std::vector<Workload>{base_workload}
                          : workloads;
    // Sentinel-carrying copies so every loop below runs at least once.
    const std::vector<Zsa> zsas =
        zsaPoints.empty() ? std::vector<Zsa>{Zsa{}} : zsaPoints;
    const std::vector<unsigned> pes =
        peColumns.empty() ? std::vector<unsigned>{0} : peColumns;
    const std::vector<unsigned> chans =
        channels.empty() ? std::vector<unsigned>{0} : channels;
    const std::vector<unsigned> pfs =
        prefetchLens.empty() ? std::vector<unsigned>{0} : prefetchLens;
    const std::vector<std::uint64_t> seedvals =
        seeds.empty() ? std::vector<std::uint64_t>{base.seed} : seeds;

    for (ProtocolKind kind : kinds) {
        for (Workload workload : loads) {
            for (const Zsa &zsa : zsas) {
                for (unsigned pe : pes) {
                    for (unsigned chan : chans) {
                        for (unsigned pf : pfs) {
                            for (std::uint64_t seed : seedvals) {
                                DesignPoint point;
                                point.index = points.size();
                                point.kind = kind;
                                point.workload = workload;
                                point.config = base;

                                std::ostringstream id;
                                id << protocolShortName(kind) << '/'
                                   << workloadName(workload);
                                if (!zsaPoints.empty()) {
                                    point.config.protocol.ringZ = zsa.z;
                                    point.config.protocol.ringS = zsa.s;
                                    point.config.protocol.ringA = zsa.a;
                                    id << "/zsa=" << zsa.z << ':' << zsa.s
                                       << ':' << zsa.a;
                                }
                                if (!peColumns.empty()) {
                                    point.config.palermo.columns = pe;
                                    id << "/pe=" << pe;
                                }
                                if (!channels.empty()) {
                                    point.config.dram.org.channels = chan;
                                    id << "/ch=" << chan;
                                }
                                if (!prefetchLens.empty()) {
                                    // 0 and 1 both mean "no prefetch".
                                    const unsigned len = pf ? pf : 1;
                                    point.config.protocol.prefetchLen =
                                        len;
                                    if (len > 1
                                        && kind == ProtocolKind::Palermo)
                                        point.kind =
                                            ProtocolKind::PalermoPrefetch;
                                    id << "/prefetch=" << pf;
                                }
                                if (!seeds.empty())
                                    id << "/seed=" << seed;
                                point.config.seed = seed;
                                point.config.protocol.seed = seed;
                                // Record what will actually run: the
                                // descriptor's capability clamp and
                                // config-adjust hook applied.
                                point.config = normalizedProtocolConfig(
                                    point.kind, point.config);
                                point.id = id.str();
                                points.push_back(std::move(point));
                            }
                        }
                    }
                }
            }
        }
    }
    return points;
}

std::vector<RunRecord>
SweepRunner::run(const std::vector<DesignPoint> &points) const
{
    std::vector<RunRecord> records(points.size());
    if (points.empty())
        return records;

    std::atomic<std::size_t> next{0};
    const auto worker = [&]() {
        for (std::size_t i = next.fetch_add(1); i < points.size();
             i = next.fetch_add(1)) {
            records[i].point = points[i];
            records[i].metrics =
                makeSession(points[i].kind, points[i].workload,
                            points[i].config)
                    ->finish();
        }
    };

    const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
        std::max(1u, jobs_), points.size()));
    if (workers == 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(workers);
        for (unsigned t = 0; t < workers; ++t)
            threads.emplace_back(worker);
        for (std::thread &thread : threads)
            thread.join();
    }
    return records;
}

bool
sanityCheck(const std::vector<RunRecord> &records,
            std::vector<std::string> *problems)
{
    bool clean = true;
    const auto report = [&](const std::string &message) {
        clean = false;
        if (problems)
            problems->push_back(message);
    };
    for (const RunRecord &record : records) {
        const RunMetrics &m = record.metrics;
        if (m.stashOverflowed && !record.point.allowStashOverflow)
            report(record.point.id + ": stash overflowed (max "
                   + std::to_string(m.stashMax) + " of "
                   + std::to_string(m.stashCapacity) + ")");
        if (m.measuredRequests == 0)
            report(record.point.id + ": no requests measured");
        if (!std::isfinite(m.requestsPerKilocycle)
            || m.requestsPerKilocycle <= 0.0)
            report(record.point.id + ": degenerate throughput");
    }
    return clean;
}

} // namespace palermo
