/**
 * @file
 * Epoch-barrier worker pool for intra-run parallelism.
 *
 * One SimSession steps N threads through barrier-synchronized cycle
 * epochs: the coordinating thread (the session driver) publishes a
 * task, workers grab shard indices, everyone meets at the epoch
 * barrier, and the coordinator proceeds knowing every shard finished.
 * Threads are persistent — created once per pool, reused for millions
 * of epochs — so the per-epoch cost is the barrier, not thread spawn.
 *
 * Dispatch is a raw function pointer plus a context pointer: run()
 * performs no heap allocation, keeping the simulator's allocs/request
 * budget (tests/test_alloc_budget.cc) intact at any thread count.
 *
 * Waits are staged spin -> yield -> std::atomic::wait (futex), so the
 * pool stays efficient on dedicated cores yet degrades gracefully when
 * threads outnumber cores (CI runners, oversubscribed hosts).
 */

#ifndef PALERMO_SIM_PARALLEL_HH
#define PALERMO_SIM_PARALLEL_HH

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace palermo {

/**
 * Persistent thread pool with epoch-barrier dispatch.
 *
 * Thread ownership: run() may only be called from one coordinating
 * thread at a time (the SimSession driver). Shards of one epoch run
 * concurrently and must not share mutable state; the coordinator
 * observes all shard effects after run() returns (release/acquire on
 * the epoch and arrival counters).
 */
class WorkerPool
{
  public:
    /** Shard body: invoked once per shard index in [0, shards). */
    using Task = void (*)(void *ctx, unsigned shard);

    /**
     * @param threads Total threads including the coordinator; the pool
     *        spawns threads - 1 workers. 0 and 1 mean "no workers".
     */
    explicit WorkerPool(unsigned threads);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Total threads including the coordinator. */
    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size()) + 1;
    }

    /**
     * Run task(ctx, shard) for every shard in [0, shards), distributing
     * shards over the workers and the calling thread, and return when
     * all shards completed (the epoch barrier). Shard-to-thread
     * assignment is dynamic: shards must be independent, and outputs
     * must be indexed by shard, never by thread.
     */
    void run(Task task, void *ctx, unsigned shards);

  private:
    void workerLoop();
    void waitEpoch(std::uint64_t last_seen);

    std::vector<std::thread> workers_;

    // Epoch protocol: the coordinator publishes task_/ctx_/shards_
    // (plain stores), then release-increments epoch_. Workers acquire
    // the new epoch, claim shards via next_, and acq_rel-decrement
    // arrivals_; the coordinator waits for arrivals_ == 0, which
    // publishes all shard effects back to it.
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<unsigned> arrivals_{0};
    std::atomic<unsigned> next_{0};
    std::atomic<bool> stop_{false};
    Task task_ = nullptr;
    void *ctx_ = nullptr;
    unsigned shards_ = 0;
};

} // namespace palermo

#endif // PALERMO_SIM_PARALLEL_HH
