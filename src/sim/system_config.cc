/**
 * @file
 * benchDefault / paperTableIII geometry construction, PALERMO_* env
 * overrides, and the bench-banner description string.
 */

#include "sim/system_config.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

#include "common/log.hh"

namespace palermo {

const char *
protocolKindName(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::PathOram: return "PathORAM";
      case ProtocolKind::RingOram: return "RingORAM";
      case ProtocolKind::PageOram: return "PageORAM";
      case ProtocolKind::PrOram: return "PrORAM";
      case ProtocolKind::IrOram: return "IR-ORAM";
      case ProtocolKind::PalermoSw: return "Palermo-SW";
      case ProtocolKind::Palermo: return "Palermo";
      case ProtocolKind::PalermoPrefetch: return "Palermo+Prefetch";
    }
    return "?";
}

const char *
protocolShortName(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::PathOram: return "path";
      case ProtocolKind::RingOram: return "ring";
      case ProtocolKind::PageOram: return "page";
      case ProtocolKind::PrOram: return "pr";
      case ProtocolKind::IrOram: return "ir";
      case ProtocolKind::PalermoSw: return "palermo-sw";
      case ProtocolKind::Palermo: return "palermo";
      case ProtocolKind::PalermoPrefetch: return "palermo-pf";
    }
    return "?";
}

const std::vector<ProtocolKind> &
allProtocolKinds()
{
    static const std::vector<ProtocolKind> kinds = {
        ProtocolKind::PathOram,  ProtocolKind::RingOram,
        ProtocolKind::PageOram,  ProtocolKind::PrOram,
        ProtocolKind::IrOram,    ProtocolKind::PalermoSw,
        ProtocolKind::Palermo,   ProtocolKind::PalermoPrefetch,
    };
    return kinds;
}

bool
protocolFromName(const std::string &name, ProtocolKind *kind)
{
    std::string low;
    low.reserve(name.size());
    for (char c : name)
        low.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));

    for (ProtocolKind k : allProtocolKinds()) {
        if (low == protocolShortName(k)) {
            *kind = k;
            return true;
        }
    }
    // Display names and common aliases.
    if (low == "pathoram") {
        *kind = ProtocolKind::PathOram;
    } else if (low == "ringoram") {
        *kind = ProtocolKind::RingOram;
    } else if (low == "pageoram") {
        *kind = ProtocolKind::PageOram;
    } else if (low == "proram") {
        *kind = ProtocolKind::PrOram;
    } else if (low == "iroram" || low == "ir-oram") {
        *kind = ProtocolKind::IrOram;
    } else if (low == "palermosw" || low == "sw") {
        *kind = ProtocolKind::PalermoSw;
    } else if (low == "palermo-prefetch" || low == "palermo+prefetch"
               || low == "palermo+pf") {
        *kind = ProtocolKind::PalermoPrefetch;
    } else {
        return false;
    }
    return true;
}

SystemConfig
SystemConfig::benchDefault()
{
    SystemConfig config;
    config.protocol.numBlocks = 1ull << 18; // 16 MB protected space.
    config.protocol.treetopBytes = {48 * 1024, 20 * 1024, 8 * 1024};
    config.totalRequests = 2000;
    config.applyEnvOverrides();
    return config;
}

SystemConfig
SystemConfig::paperTableIII()
{
    SystemConfig config;
    config.protocol.numBlocks = 1ull << 28; // 16 GB protected space.
    config.protocol.treetopBytes =
        {256 * 1024, 256 * 1024, 256 * 1024};
    config.totalRequests = 2000;
    config.applyEnvOverrides();
    return config;
}

void
SystemConfig::applyEnvOverrides()
{
    if (const char *reqs = std::getenv("PALERMO_REQS")) {
        const std::uint64_t value = std::strtoull(reqs, nullptr, 10);
        if (value > 0)
            totalRequests = value;
    }
    if (const char *blocks = std::getenv("PALERMO_BLOCKS")) {
        const std::uint64_t value = std::strtoull(blocks, nullptr, 10);
        if (value > 0)
            protocol.numBlocks = value;
    }
    if (const char *seed_env = std::getenv("PALERMO_SEED")) {
        seed = std::strtoull(seed_env, nullptr, 10);
        protocol.seed = seed;
    }
}

std::string
SystemConfig::describe() const
{
    std::ostringstream os;
    os << "protected space   : "
       << (protocol.numBlocks * kBlockBytes >> 20) << " MB ("
       << protocol.numBlocks << " lines)\n";
    os << "ring (Z, S, A)    : (" << protocol.ringZ << ", "
       << protocol.ringS << ", " << protocol.ringA << ")\n";
    os << "path Z            : " << protocol.pathZ << "\n";
    os << "posmap fan-out    : " << protocol.posFanout
       << " (3-level hierarchy, PosMap3 on-chip)\n";
    os << "stash capacity    : " << protocol.stashCapacity << " blocks\n";
    os << "tree-top caches   : " << protocol.treetopBytes[0] / 1024
       << "/" << protocol.treetopBytes[1] / 1024 << "/"
       << protocol.treetopBytes[2] / 1024 << " KB (data/pos1/pos2)\n";
    os << "DRAM              : " << dram.timing.name << ", "
       << dram.org.channels << " channels, "
       << dram.timing.bytesPerCycle() * dram.org.channels
            * dram.timing.clockGHz
       << " GB/s peak\n";
    os << "PE mesh           : 3 x " << palermo.columns << " @ "
       << dram.timing.clockGHz << " GHz\n";
    os << "requests          : " << totalRequests << " (warmup "
       << static_cast<unsigned>(warmupFraction * 100) << "%)\n";
    return os.str();
}

} // namespace palermo
