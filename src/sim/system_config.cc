/**
 * @file
 * benchDefault / paperTableIII geometry construction, PALERMO_* env
 * overrides, and the bench-banner description string.
 */

#include "sim/system_config.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/log.hh"
#include "sim/protocol_registry.hh"

namespace palermo {

// The name functions are thin views over the protocol registry, so a
// newly registered protocol shows up in every CLI parser, usage
// string, and JSON document without touching this file.

const char *
protocolKindName(ProtocolKind kind)
{
    return ProtocolRegistry::instance().at(kind).displayName;
}

const char *
protocolShortName(ProtocolKind kind)
{
    return ProtocolRegistry::instance().at(kind).shortToken;
}

const std::vector<ProtocolKind> &
allProtocolKinds()
{
    // Materialized once, after static init: registration is complete
    // by the time any experiment code can call this.
    static const std::vector<ProtocolKind> kinds = [] {
        std::vector<ProtocolKind> result;
        for (const ProtocolDescriptor *descriptor :
             ProtocolRegistry::instance().all())
            result.push_back(descriptor->kind);
        return result;
    }();
    return kinds;
}

bool
protocolFromName(const std::string &name, ProtocolKind *kind)
{
    const ProtocolDescriptor *descriptor =
        ProtocolRegistry::instance().findByName(name);
    if (descriptor == nullptr)
        return false;
    *kind = descriptor->kind;
    return true;
}

SystemConfig
SystemConfig::benchDefault()
{
    SystemConfig config;
    config.protocol.numBlocks = 1ull << 18; // 16 MB protected space.
    config.protocol.treetopBytes = {48 * 1024, 20 * 1024, 8 * 1024};
    config.totalRequests = 2000;
    config.applyEnvOverrides();
    return config;
}

SystemConfig
SystemConfig::paperTableIII()
{
    SystemConfig config;
    config.protocol.numBlocks = 1ull << 28; // 16 GB protected space.
    config.protocol.treetopBytes =
        {256 * 1024, 256 * 1024, 256 * 1024};
    config.totalRequests = 2000;
    config.applyEnvOverrides();
    return config;
}

void
SystemConfig::applyEnvOverrides()
{
    if (const char *reqs = std::getenv("PALERMO_REQS")) {
        const std::uint64_t value = std::strtoull(reqs, nullptr, 10);
        if (value > 0)
            totalRequests = value;
    }
    if (const char *blocks = std::getenv("PALERMO_BLOCKS")) {
        const std::uint64_t value = std::strtoull(blocks, nullptr, 10);
        if (value > 0)
            protocol.numBlocks = value;
    }
    if (const char *seed_env = std::getenv("PALERMO_SEED")) {
        seed = std::strtoull(seed_env, nullptr, 10);
        protocol.seed = seed;
    }
}

std::string
SystemConfig::describe() const
{
    std::ostringstream os;
    os << "protected space   : "
       << (protocol.numBlocks * kBlockBytes >> 20) << " MB ("
       << protocol.numBlocks << " lines)\n";
    os << "ring (Z, S, A)    : (" << protocol.ringZ << ", "
       << protocol.ringS << ", " << protocol.ringA << ")\n";
    os << "path Z            : " << protocol.pathZ << "\n";
    os << "posmap fan-out    : " << protocol.posFanout
       << " (3-level hierarchy, PosMap3 on-chip)\n";
    os << "stash capacity    : " << protocol.stashCapacity << " blocks\n";
    os << "tree-top caches   : " << protocol.treetopBytes[0] / 1024
       << "/" << protocol.treetopBytes[1] / 1024 << "/"
       << protocol.treetopBytes[2] / 1024 << " KB (data/pos1/pos2)\n";
    os << "DRAM              : " << dram.timing.name << ", "
       << dram.org.channels << " channels, "
       << dram.timing.bytesPerCycle() * dram.org.channels
            * dram.timing.clockGHz
       << " GB/s peak\n";
    os << "PE mesh           : 3 x " << palermo.columns << " @ "
       << dram.timing.clockGHz << " GHz\n";
    os << "requests          : " << totalRequests << " (warmup "
       << static_cast<unsigned>(warmupFraction * 100) << "%)\n";
    return os.str();
}

} // namespace palermo
