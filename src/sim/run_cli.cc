/**
 * @file
 * palermo_run flag parsing and base-config resolution.
 */

#include "sim/run_cli.hh"

#include <iomanip>
#include <sstream>

#include "sim/protocol_registry.hh"

namespace palermo {

namespace {

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

} // namespace

bool
parseRunArgs(int argc, const char *const *argv, RunOptions *options,
             std::string *error)
{
    RunOptions result;

    ArgCursor cursor(argc, argv);
    while (cursor.advance()) {
        const std::string name = cursor.name();
        std::string value;

        if (name == "--help" || name == "-h") {
            result.help = true;
        } else if (name == "--list") {
            result.listPoints = true;
        } else if (name == "--list-protocols") {
            result.listProtocols = true;
        } else if (name == "--list-workloads") {
            result.listWorkloads = true;
        } else if (name == "--paper") {
            result.paperGeometry = true;
        } else if (name == "--constant-rate") {
            result.constantRate = true;
        } else if (name == "--protocol") {
            if (!cursor.value(&value))
                return fail(error, "--protocol needs a name");
            if (!protocolFromName(value, &result.protocol))
                return fail(error, "unknown protocol '" + value + "'");
        } else if (name == "--workload") {
            if (!cursor.value(&value))
                return fail(error, "--workload needs a name");
            if (!tryWorkloadFromName(value, &result.workload))
                return fail(error, "unknown workload '" + value + "'");
        } else if (name == "--blocks") {
            if (!cursor.value(&value)
                || !parseUnsigned(value, &result.blocks)
                || result.blocks == 0)
                return fail(error, "--blocks needs a positive integer");
        } else if (name == "--reqs") {
            if (!cursor.value(&value)
                || !parseUnsigned(value, &result.reqs)
                || result.reqs == 0)
                return fail(error, "--reqs needs a positive integer");
        } else if (name == "--seed") {
            if (!cursor.value(&value)
                || !parseUnsigned(value, &result.seed))
                return fail(error, "--seed needs an unsigned integer");
            result.seedSet = true;
        } else if (name == "--sweep") {
            if (!cursor.value(&value))
                return fail(error, "--sweep needs a grid spec");
            if (!result.sweep.empty())
                result.sweep.push_back(';');
            result.sweep.append(value);
        } else if (name == "--json") {
            if (!cursor.value(&value))
                return fail(error, "--json needs a path (or '-')");
            result.jsonPath = value;
        } else if (name == "--jobs" || name == "-j") {
            std::uint64_t jobs = 0;
            if (!cursor.value(&value) || !parseUnsigned(value, &jobs)
                || jobs == 0)
                return fail(error, "--jobs needs a positive integer");
            result.jobs = static_cast<unsigned>(jobs);
        } else if (name == "--sim-threads") {
            std::uint64_t threads = 0;
            if (!cursor.value(&value)
                || !parseUnsigned(value, &threads) || threads == 0)
                return fail(error,
                            "--sim-threads needs a positive integer");
            result.simThreads = static_cast<unsigned>(threads);
        } else {
            return fail(error, "unknown flag '" + name + "'");
        }
    }

    *options = result;
    return true;
}

SystemConfig
RunOptions::baseConfig() const
{
    SystemConfig config = paperGeometry ? SystemConfig::paperTableIII()
                                        : SystemConfig::benchDefault();
    if (blocks)
        config.protocol.numBlocks = blocks;
    if (reqs)
        config.totalRequests = reqs;
    if (seedSet) {
        config.seed = seed;
        config.protocol.seed = seed;
    }
    config.constantRate = constantRate;
    config.simThreads = simThreads;
    return config;
}

std::vector<DesignPoint>
RunOptions::expandPoints(std::string *error) const
{
    SweepSpec spec;
    if (!SweepSpec::parse(sweep, &spec, error))
        return {};
    return spec.expand(protocol, workload, baseConfig());
}

namespace {

/** "a|b|c" join of the registered protocol tokens (usage text). */
std::string
protocolTokens()
{
    std::string joined;
    for (ProtocolKind kind : allProtocolKinds()) {
        if (!joined.empty())
            joined.push_back('|');
        joined.append(protocolShortName(kind));
    }
    return joined;
}

std::string
workloadTokens()
{
    std::string joined;
    for (Workload workload : allWorkloads()) {
        if (!joined.empty())
            joined.push_back('|');
        joined.append(workloadName(workload));
    }
    return joined;
}

} // namespace

std::string
protocolListing()
{
    std::string out;
    for (const ProtocolDescriptor *d :
         ProtocolRegistry::instance().all()) {
        std::ostringstream line;
        line << std::left << std::setw(14) << d->shortToken
             << std::setw(20) << d->displayName;
        std::string flags;
        if (d->supportsPrefetch)
            flags += "prefetch";
        if (d->constantRateCapable)
            flags += flags.empty() ? "constant-rate" : ",constant-rate";
        line << std::setw(24) << (flags.empty() ? "-" : flags);
        if (!d->aliases.empty()) {
            line << "aliases: ";
            for (std::size_t i = 0; i < d->aliases.size(); ++i)
                line << (i ? ", " : "") << d->aliases[i];
        }
        std::string text = line.str();
        while (!text.empty() && text.back() == ' ')
            text.pop_back(); // Diff-stable: no trailing padding.
        out += text;
        out += '\n';
    }
    return out;
}

std::string
workloadListing()
{
    std::ostringstream os;
    for (Workload workload : allWorkloads())
        os << workloadName(workload) << '\n';
    return os.str();
}

std::string
runUsage()
{
    std::ostringstream os;
    os << "usage: palermo_run [options]\n"
       << "\n"
       << "Run one design point, or a sweep grid, and report metrics.\n"
       << "\n"
       << "options:\n"
       << "  --protocol NAME   " << protocolTokens() << "\n"
       << "                    (default: palermo)\n"
       << "  --workload NAME   " << workloadTokens() << "\n"
       << "                    (default: random)\n"
       << "  --blocks N        protected 64B lines (default: 2^18)\n"
       << "  --reqs N          real LLC misses to simulate "
          "(default: 2000)\n"
       << "  --seed N          determinism seed (default: 1)\n"
       << "  --paper           Table III 16 GB geometry instead of the\n"
       << "                    scaled bench default\n"
       << "  --constant-rate   fixed-interval issue with dummy padding\n"
       << "  --sweep SPEC      grid axes: 'axis=v1,v2;axis=...' over\n"
       << "                    protocol, workload, zsa (Z:S:A), pe,\n"
       << "                    channels, prefetch, seed; repeatable\n"
       << "  --jobs N          worker threads for the sweep "
          "(default: 1)\n"
       << "  --sim-threads N   threads stepping each session "
          "(channel-sharded,\n"
       << "                    byte-identical to serial; default: 1)\n"
       << "  --json PATH       write palermo-metrics-v1 JSON "
          "('-' = stdout)\n"
       << "  --list            print the expanded grid and exit\n"
       << "  --list-protocols  print the protocol registry and exit\n"
       << "  --list-workloads  print workload names and exit\n"
       << "  --help            this text\n"
       << "\n"
       << "example:\n"
       << "  palermo_run --protocol palermo --workload graph \\\n"
       << "      --sweep prefetch=0,4,8 --jobs 4 --json out.json\n";
    return os.str();
}


bool
parseReplayArgs(int argc, const char *const *argv,
                ReplayOptions *options, std::string *error)
{
    ReplayOptions result;

    ArgCursor cursor(argc, argv);
    while (cursor.advance()) {
        const std::string name = cursor.name();
        std::string value;

        if (name == "--help" || name == "-h") {
            result.help = true;
        } else if (name == "--list-protocols") {
            result.listProtocols = true;
        } else if (name == "--paper") {
            result.paperGeometry = true;
        } else if (name == "--trace") {
            if (!cursor.value(&value))
                return fail(error, "--trace needs a file path");
            result.tracePath = value;
        } else if (name == "--scenario") {
            if (!cursor.value(&value))
                return fail(error, "--scenario needs a file path");
            result.scenarioPath = value;
        } else if (name == "--protocol") {
            if (!cursor.value(&value))
                return fail(error, "--protocol needs a name");
            if (!protocolFromName(value, &result.protocol))
                return fail(error, "unknown protocol '" + value + "'");
        } else if (name == "--blocks") {
            if (!cursor.value(&value)
                || !parseUnsigned(value, &result.blocks)
                || result.blocks == 0)
                return fail(error, "--blocks needs a positive integer");
        } else if (name == "--seed") {
            if (!cursor.value(&value)
                || !parseUnsigned(value, &result.seed))
                return fail(error, "--seed needs an unsigned integer");
            result.seedSet = true;
        } else if (name == "--depth") {
            if (!cursor.value(&value)
                || !parseUnsigned(value, &result.depth)
                || result.depth == 0)
                return fail(error, "--depth needs a positive integer");
        } else if (name == "--progress") {
            if (!cursor.value(&value)
                || !parseUnsigned(value, &result.progress)
                || result.progress == 0)
                return fail(error,
                            "--progress needs a positive integer");
        } else if (name == "--sim-threads") {
            std::uint64_t threads = 0;
            if (!cursor.value(&value)
                || !parseUnsigned(value, &threads) || threads == 0)
                return fail(error,
                            "--sim-threads needs a positive integer");
            result.simThreads = static_cast<unsigned>(threads);
        } else if (name == "--json") {
            if (!cursor.value(&value))
                return fail(error, "--json needs a path (or '-')");
            result.jsonPath = value;
        } else {
            return fail(error, "unknown flag '" + name + "'");
        }
    }

    *options = result;
    return true;
}

SystemConfig
ReplayOptions::baseConfig() const
{
    SystemConfig config = paperGeometry ? SystemConfig::paperTableIII()
                                        : SystemConfig::benchDefault();
    if (blocks)
        config.protocol.numBlocks = blocks;
    if (seedSet) {
        config.seed = seed;
        config.protocol.seed = seed;
    }
    config.simThreads = simThreads;
    return config;
}

std::string
replayUsage()
{
    std::ostringstream os;
    os << "usage: palermo_replay --trace FILE [options]\n"
       << "       palermo_replay --scenario FILE [options]\n"
       << "\n"
       << "Replay an external LLC-miss trace through a SimSession, or\n"
       << "run a multi-tenant scenario file (see palermo_scenario).\n"
       << "\n"
       << "options:\n"
       << "  --trace FILE      trace file ('R <line>' / 'W <line> "
          "[value]')\n"
       << "  --scenario FILE   multi-tenant scenario JSON (excludes "
          "--trace;\n"
       << "                    honors only --sim-threads and --json)\n"
       << "  --protocol NAME   " << protocolTokens() << "\n"
       << "                    (default: palermo)\n"
       << "  --blocks N        protected 64B lines (default: 2^18)\n"
       << "  --seed N          determinism seed (default: 1)\n"
       << "  --paper           Table III 16 GB geometry\n"
       << "  --depth N         submit-queue depth ahead of the "
          "controller (default: 8)\n"
       << "  --progress N      print a mid-run snapshot line to stderr "
          "every N served\n"
       << "  --sim-threads N   threads stepping the session "
          "(channel-sharded,\n"
       << "                    byte-identical to serial; default: 1)\n"
       << "  --json PATH       write palermo-metrics-v1 JSON "
          "('-' = stdout)\n"
       << "  --list-protocols  print the protocol registry and exit\n"
       << "  --help            this text\n";
    return os.str();
}

} // namespace palermo
