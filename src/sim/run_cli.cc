/**
 * @file
 * palermo_run flag parsing and base-config resolution.
 */

#include "sim/run_cli.hh"

#include <sstream>

namespace palermo {

namespace {

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

} // namespace

bool
parseRunArgs(int argc, const char *const *argv, RunOptions *options,
             std::string *error)
{
    RunOptions result;

    int i = 0;
    const auto nextValue = [&](const std::string &flag,
                               std::string *value) {
        const std::size_t eq = flag.find('=');
        if (eq != std::string::npos) {
            *value = flag.substr(eq + 1);
            return true;
        }
        if (i + 1 >= argc)
            return false;
        *value = argv[++i];
        return true;
    };
    const auto flagName = [](const std::string &flag) {
        const std::size_t eq = flag.find('=');
        return eq == std::string::npos ? flag : flag.substr(0, eq);
    };

    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        const std::string name = flagName(arg);
        std::string value;

        if (name == "--help" || name == "-h") {
            result.help = true;
        } else if (name == "--list") {
            result.listPoints = true;
        } else if (name == "--paper") {
            result.paperGeometry = true;
        } else if (name == "--constant-rate") {
            result.constantRate = true;
        } else if (name == "--protocol") {
            if (!nextValue(arg, &value))
                return fail(error, "--protocol needs a name");
            if (!protocolFromName(value, &result.protocol))
                return fail(error, "unknown protocol '" + value + "'");
        } else if (name == "--workload") {
            if (!nextValue(arg, &value))
                return fail(error, "--workload needs a name");
            if (!tryWorkloadFromName(value, &result.workload))
                return fail(error, "unknown workload '" + value + "'");
        } else if (name == "--blocks") {
            if (!nextValue(arg, &value)
                || !parseUnsigned(value, &result.blocks)
                || result.blocks == 0)
                return fail(error, "--blocks needs a positive integer");
        } else if (name == "--reqs") {
            if (!nextValue(arg, &value)
                || !parseUnsigned(value, &result.reqs)
                || result.reqs == 0)
                return fail(error, "--reqs needs a positive integer");
        } else if (name == "--seed") {
            if (!nextValue(arg, &value)
                || !parseUnsigned(value, &result.seed))
                return fail(error, "--seed needs an unsigned integer");
            result.seedSet = true;
        } else if (name == "--sweep") {
            if (!nextValue(arg, &value))
                return fail(error, "--sweep needs a grid spec");
            if (!result.sweep.empty())
                result.sweep.push_back(';');
            result.sweep.append(value);
        } else if (name == "--json") {
            if (!nextValue(arg, &value))
                return fail(error, "--json needs a path (or '-')");
            result.jsonPath = value;
        } else if (name == "--jobs" || name == "-j") {
            std::uint64_t jobs = 0;
            if (!nextValue(arg, &value) || !parseUnsigned(value, &jobs)
                || jobs == 0)
                return fail(error, "--jobs needs a positive integer");
            result.jobs = static_cast<unsigned>(jobs);
        } else {
            return fail(error, "unknown flag '" + name + "'");
        }
    }

    *options = result;
    return true;
}

SystemConfig
RunOptions::baseConfig() const
{
    SystemConfig config = paperGeometry ? SystemConfig::paperTableIII()
                                        : SystemConfig::benchDefault();
    if (blocks)
        config.protocol.numBlocks = blocks;
    if (reqs)
        config.totalRequests = reqs;
    if (seedSet) {
        config.seed = seed;
        config.protocol.seed = seed;
    }
    config.constantRate = constantRate;
    return config;
}

std::vector<DesignPoint>
RunOptions::expandPoints(std::string *error) const
{
    SweepSpec spec;
    if (!SweepSpec::parse(sweep, &spec, error))
        return {};
    return spec.expand(protocol, workload, baseConfig());
}

std::string
runUsage()
{
    std::ostringstream os;
    os << "usage: palermo_run [options]\n"
       << "\n"
       << "Run one design point, or a sweep grid, and report metrics.\n"
       << "\n"
       << "options:\n"
       << "  --protocol NAME   path|ring|page|pr|ir|palermo-sw|palermo|"
          "palermo-pf\n"
       << "                    (default: palermo)\n"
       << "  --workload NAME   mcf|lbm|pr|graph|motif|rm1|rm2|llm|redis|"
          "stream|random\n"
       << "                    (default: random)\n"
       << "  --blocks N        protected 64B lines (default: 2^18)\n"
       << "  --reqs N          real LLC misses to simulate "
          "(default: 2000)\n"
       << "  --seed N          determinism seed (default: 1)\n"
       << "  --paper           Table III 16 GB geometry instead of the\n"
       << "                    scaled bench default\n"
       << "  --constant-rate   fixed-interval issue with dummy padding\n"
       << "  --sweep SPEC      grid axes: 'axis=v1,v2;axis=...' over\n"
       << "                    protocol, workload, zsa (Z:S:A), pe,\n"
       << "                    channels, prefetch, seed; repeatable\n"
       << "  --jobs N          worker threads for the sweep "
          "(default: 1)\n"
       << "  --json PATH       write palermo-metrics-v1 JSON "
          "('-' = stdout)\n"
       << "  --list            print the expanded grid and exit\n"
       << "  --help            this text\n"
       << "\n"
       << "example:\n"
       << "  palermo_run --protocol palermo --workload graph \\\n"
       << "      --sweep prefetch=0,4,8 --jobs 4 --json out.json\n";
    return os.str();
}

} // namespace palermo
