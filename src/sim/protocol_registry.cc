/**
 * @file
 * ProtocolRegistry storage, name resolution, and the registry-backed
 * controller builder.
 */

#include "sim/protocol_registry.hh"

#include <algorithm>
#include <cctype>

#include "common/log.hh"
#include "controller/controller.hh"

namespace palermo {

namespace {

std::string
lowered(const std::string &text)
{
    std::string low;
    low.reserve(text.size());
    for (char c : text)
        low.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    return low;
}

} // namespace

ProtocolRegistry &
ProtocolRegistry::instance()
{
    static ProtocolRegistry registry;
    return registry;
}

void
ProtocolRegistry::add(ProtocolDescriptor descriptor)
{
    palermo_assert(descriptor.displayName != nullptr
                   && descriptor.shortToken != nullptr
                   && descriptor.build != nullptr,
                   "incomplete protocol descriptor");

    for (const auto &existing : descriptors_) {
        palermo_assert(existing->kind != descriptor.kind,
                       "duplicate protocol kind registration");
        palermo_assert(existing->barOrder != descriptor.barOrder,
                       "duplicate protocol bar position");
    }
    // Every accepted spelling must resolve to exactly one protocol.
    std::vector<std::string> names{lowered(descriptor.displayName),
                                   lowered(descriptor.shortToken)};
    for (const std::string &alias : descriptor.aliases)
        names.push_back(lowered(alias));
    for (const std::string &name : names)
        palermo_assert(findByName(name) == nullptr,
                       "protocol name registered twice");

    descriptors_.push_back(
        std::make_unique<ProtocolDescriptor>(std::move(descriptor)));
}

const ProtocolDescriptor *
ProtocolRegistry::find(ProtocolKind kind) const
{
    for (const auto &descriptor : descriptors_)
        if (descriptor->kind == kind)
            return descriptor.get();
    return nullptr;
}

const ProtocolDescriptor &
ProtocolRegistry::at(ProtocolKind kind) const
{
    const ProtocolDescriptor *descriptor = find(kind);
    if (descriptor == nullptr)
        panic("protocol kind %d has no registered descriptor (is its "
              "registration TU linked in?)",
              static_cast<int>(kind));
    return *descriptor;
}

const ProtocolDescriptor *
ProtocolRegistry::findByName(const std::string &name) const
{
    const std::string low = lowered(name);
    for (const auto &descriptor : descriptors_) {
        if (low == lowered(descriptor->displayName)
            || low == lowered(descriptor->shortToken))
            return descriptor.get();
        for (const std::string &alias : descriptor->aliases)
            if (low == lowered(alias))
                return descriptor.get();
    }
    return nullptr;
}

std::vector<const ProtocolDescriptor *>
ProtocolRegistry::all() const
{
    std::vector<const ProtocolDescriptor *> sorted;
    sorted.reserve(descriptors_.size());
    for (const auto &descriptor : descriptors_)
        sorted.push_back(descriptor.get());
    std::sort(sorted.begin(), sorted.end(),
              [](const ProtocolDescriptor *a, const ProtocolDescriptor *b) {
                  return a->barOrder < b->barOrder;
              });
    return sorted;
}

ProtocolRegistrar::ProtocolRegistrar(ProtocolDescriptor descriptor)
{
    ProtocolRegistry::instance().add(std::move(descriptor));
}

SystemConfig
normalizedProtocolConfig(ProtocolKind kind, const SystemConfig &config)
{
    const ProtocolDescriptor &descriptor =
        ProtocolRegistry::instance().at(kind);
    if (config.constantRate && !descriptor.constantRateCapable)
        fatal("protocol %s cannot run under the constant-rate frontend",
              descriptor.displayName);

    SystemConfig adjusted = config;
    if (!descriptor.supportsPrefetch)
        adjusted.protocol.prefetchLen = 1;
    if (descriptor.adjustConfig)
        descriptor.adjustConfig(adjusted);
    return adjusted;
}

std::unique_ptr<Controller>
buildProtocolController(ProtocolKind kind, const SystemConfig &config)
{
    const ProtocolDescriptor &descriptor =
        ProtocolRegistry::instance().at(kind);
    return descriptor.build(normalizedProtocolConfig(kind, config));
}

} // namespace palermo
