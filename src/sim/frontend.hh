/**
 * @file
 * Frontend: the LLC-miss source feeding the ORAM controller.
 *
 * Substitutes the paper's Sniper-driven host CPU (DESIGN.md §1 item 15).
 * Two issue modes: saturated closed-loop (performance runs; after ORAM
 * conversion the system is fully DRAM-bound so throughput equals
 * end-to-end speedup) and constant-rate with dummy padding (the issue
 * discipline the paper's §VI security analysis assumes).
 */

#ifndef PALERMO_SIM_FRONTEND_HH
#define PALERMO_SIM_FRONTEND_HH

#include <memory>

#include "common/types.hh"
#include "trace/trace_gen.hh"

namespace palermo {

/** An admitted frontend request. */
struct FrontendRequest
{
    BlockId pa;
    bool write;
    std::uint64_t value;
    bool dummy;
};

/** LLC-miss issue policy. */
class Frontend
{
  public:
    /**
     * @param trace Miss stream (owned).
     * @param total_requests Real misses to issue in this run.
     * @param constant_rate Fixed-interval issue with dummy padding.
     * @param interval Cycles between issue slots in constant-rate mode.
     * @param demand_probability In constant-rate mode, probability an
     *        issue slot carries a real miss (otherwise a dummy pads it).
     * @param seed Determinism seed for values and padding.
     */
    Frontend(std::unique_ptr<TraceGen> trace,
             std::uint64_t total_requests, bool constant_rate,
             unsigned interval, double demand_probability,
             std::uint64_t seed);

    /** Tick value meaning "no further issue will ever happen". */
    static constexpr Tick kNever = ~Tick{0};

    /** True if a request should be offered to the controller now. */
    bool wantsIssue(Tick now) const;

    /**
     * Earliest tick >= now at which wantsIssue can become true: `now`
     * itself in saturated mode, the next slot in constant-rate mode,
     * kNever once exhausted. Lets the session skip idle cycles in one
     * batched epoch without changing any admission decision.
     */
    Tick nextIssueAt(Tick now) const;

    /** All real misses issued? */
    bool exhausted() const { return issued_ >= totalRequests_; }

    /** Produce the request for this issue slot. */
    FrontendRequest produce(Tick now);

    std::uint64_t issuedReal() const { return issued_; }
    std::uint64_t issuedDummy() const { return dummies_; }

  private:
    std::unique_ptr<TraceGen> trace_;
    std::uint64_t totalRequests_;
    bool constantRate_;
    unsigned interval_;
    double demandProbability_;
    Rng rng_;
    std::uint64_t issued_ = 0;
    std::uint64_t dummies_ = 0;
    Tick nextSlot_ = 0;
};

} // namespace palermo

#endif // PALERMO_SIM_FRONTEND_HH
